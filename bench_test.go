package mptcpsim_test

// One benchmark per figure of the paper's evaluation: each runs the
// corresponding experiment at reduced scale and reports headline metrics
// through testing.B. Use cmd/mptcp-bench for the paper-scale tables.

import (
	"strconv"
	"testing"

	"mptcpsim/internal/exp"
)

// benchCfg keeps each figure's benchmark iteration in the low seconds.
var benchCfg = exp.Config{Seed: 1, Scale: 0.05, Reps: 1}

func benchFig(b *testing.B, id string, metricRow, metricCol, unit string) {
	b.Helper()
	e, ok := exp.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		res := e.Run(benchCfg)
		if len(res.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
		if metricCol != "" {
			b.ReportMetric(metric(b, res, metricRow, metricCol), unit)
		}
	}
}

// metric extracts one named cell from a result for ReportMetric.
func metric(b *testing.B, res *exp.Result, rowPrefix, col string) float64 {
	b.Helper()
	colIdx := -1
	for i, c := range res.Columns {
		if c == col {
			colIdx = i
			break
		}
	}
	if colIdx < 0 {
		b.Fatalf("%s: no column %q", res.ID, col)
	}
	for _, row := range res.Rows {
		if row[0] != rowPrefix {
			continue
		}
		v, err := strconv.ParseFloat(row[colIdx], 64)
		if err != nil {
			b.Fatalf("%s: non-numeric cell %q", res.ID, row[colIdx])
		}
		return v
	}
	b.Fatalf("%s: no row %q", res.ID, rowPrefix)
	return 0
}

func BenchmarkFig01SubflowPower(b *testing.B) {
	benchFig(b, "fig1", "mptcp-2nic", "power_w", "W")
}

func BenchmarkFig02NexusPower(b *testing.B) {
	benchFig(b, "fig2", "mptcp-wifi+lte", "power_w", "W")
}

func BenchmarkFig03aEthernet(b *testing.B) {
	benchFig(b, "fig3a", "1000", "energy_j", "J")
}

func BenchmarkFig03bWiFi(b *testing.B) {
	benchFig(b, "fig3b", "50", "energy_j", "J")
}

func BenchmarkFig04DelayPower(b *testing.B) {
	benchFig(b, "fig4", "5.0", "power_w", "W")
}

func BenchmarkFig06AlgorithmEnergy(b *testing.B) {
	benchFig(b, "fig6", "", "", "")
}

func BenchmarkFig07TrafficShift(b *testing.B) {
	benchFig(b, "fig7", "lia", "j_per_gbit", "J/Gb")
}

func BenchmarkFig08DTSTrace(b *testing.B) {
	benchFig(b, "fig8", "", "", "")
}

func BenchmarkFig09DTSEnergy(b *testing.B) {
	benchFig(b, "fig9", "dts-lia", "saving_vs_lia_pct", "%saved")
}

func BenchmarkFig10EC2(b *testing.B) {
	benchFig(b, "fig10", "dts-lia", "saving_vs_tcp_pct", "%saved")
}

func BenchmarkFig12BCube(b *testing.B) {
	benchFig(b, "fig12", "8", "j_per_gbit", "J/Gb")
}

func BenchmarkFig13FatTree(b *testing.B) {
	benchFig(b, "fig13", "8", "j_per_gbit", "J/Gb")
}

func BenchmarkFig14VL2(b *testing.B) {
	benchFig(b, "fig14", "8", "j_per_gbit", "J/Gb")
}

func BenchmarkFig15ExtendedDTS(b *testing.B) {
	benchFig(b, "fig15", "", "", "")
}

func BenchmarkFig16Throughput(b *testing.B) {
	benchFig(b, "fig16", "", "", "")
}

func BenchmarkFig17HetWireless(b *testing.B) {
	benchFig(b, "fig17", "dts", "energy_saving_vs_lia_pct", "%saved")
}
